#ifndef STAPL_RUNTIME_RUNTIME_HPP
#define STAPL_RUNTIME_RUNTIME_HPP

// The stapl run-time system (RTS) work-alike (dissertation Ch. III.B).
//
// The RTS provides *locations* as an abstraction of processing elements.  In
// this reproduction a location is backed by a std::thread inside one process;
// different locations communicate exclusively through the RMI primitives
// below (ARMI work-alike).  Two transports are available:
//
//   * transport_kind::queue  — message passing through per-location FIFO
//     inboxes.  Models a distributed-memory machine: per-(source,destination)
//     in-order delivery, completion at fences, polling progress.
//   * transport_kind::direct — locked direct execution on the destination
//     representative from the calling thread.  Models ARMI's shared-memory
//     transport and makes the Ch. VI thread-safety machinery load-bearing.
//
// The guarantees relied upon by the memory-consistency model of Ch. VII are
// provided here: requests from location A to location B execute in invocation
// order, rmi_fence() returns only when no pending RMI exists in the system
// (distributed termination detection), and sync/split-phase acknowledgment
// semantics follow Ch. VII.B.

#include "fault.hpp"
#include "instrument.hpp"
#include "latency.hpp"
#include "serialization.hpp"
#include "types.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace stapl {

/// Configuration of one SPMD execution (see `execute`).
struct runtime_config {
  unsigned num_locations = 1;
  transport_kind transport = transport_kind::queue;
  /// Number of RMIs aggregated into a single "network" message (Ch. III.B:
  /// the RTS packs multiple requests to a given location into one message).
  unsigned aggregation = 16;
  /// Byte cap of one aggregation buffer: a destination's buffer flushes as
  /// soon as its marshaled payload reaches this many bytes, even when the
  /// RMI count is still below `aggregation` — large payloads should not
  /// sit in the buffer waiting for company.
  std::size_t agg_max_bytes = 4096;
  /// Per-sender sequence numbers + receiver-side duplicate suppression on
  /// queued delivery (exactly-once under duplication/reordering).  Latched
  /// on whenever the fault layer is armed; off by default because the
  /// in-process transports never duplicate.
  bool sequenced_delivery = false;
  /// Hard bound on the deferred-retry queue (parked requests whose target
  /// has not registered yet).  Growth past this means a registration will
  /// never arrive — the watchdog dumps and the debug build asserts instead
  /// of letting the queue grow silently.
  std::size_t max_deferred = std::size_t{1} << 20;
};

/// Per-location communication statistics (performance monitor).
struct location_stats {
  std::uint64_t rmis_sent = 0;      ///< RMIs issued to remote locations
  std::uint64_t rmis_executed = 0;  ///< incoming RMIs executed here
  std::uint64_t local_rmis = 0;     ///< RMIs resolved locally (inline)
  std::uint64_t msgs_sent = 0;      ///< aggregated network messages sent
  std::uint64_t sync_rmis = 0;      ///< synchronous round trips
  std::uint64_t fences = 0;         ///< rmi_fence invocations
  std::uint64_t rmi_bytes = 0;      ///< marshaled payload bytes of sent RMIs
  std::uint64_t msg_bytes = 0;      ///< payload bytes of flushed messages
  std::uint64_t coll_ops = 0;       ///< tree-path collective operations
  std::uint64_t coll_rounds = 0;    ///< communication rounds across tree ops
  std::uint64_t coll_depth = 0;     ///< deepest tree seen (gauge, max-merged)
  std::uint64_t coll_flat = 0;      ///< collectives on the flat fallback
  std::uint64_t agg_batches = 0;    ///< flushed messages carrying >1 RMI
  std::uint64_t agg_batch_bytes = 0; ///< payload bytes of those batches
  std::uint64_t inbox_depth = 0;    ///< deepest inbox seen (gauge, max-merged)
  std::uint64_t deferred_hw = 0;    ///< deepest deferred queue (gauge)

  location_stats& operator+=(location_stats const& o) noexcept
  {
    rmis_sent += o.rmis_sent;
    rmis_executed += o.rmis_executed;
    local_rmis += o.local_rmis;
    msgs_sent += o.msgs_sent;
    sync_rmis += o.sync_rmis;
    fences += o.fences;
    rmi_bytes += o.rmi_bytes;
    msg_bytes += o.msg_bytes;
    coll_ops += o.coll_ops;
    coll_rounds += o.coll_rounds;
    if (coll_depth < o.coll_depth)
      coll_depth = o.coll_depth; // gauge, not additive
    coll_flat += o.coll_flat;
    agg_batches += o.agg_batches;
    agg_batch_bytes += o.agg_batch_bytes;
    if (inbox_depth < o.inbox_depth)
      inbox_depth = o.inbox_depth; // gauge
    if (deferred_hw < o.deferred_hw)
      deferred_hw = o.deferred_hw; // gauge
    return *this;
  }
};

namespace runtime_detail {

/// A queued RMI request.  Returns false when the target object has not yet
/// been registered on this location (SPMD construction skew), or — for
/// directory-forwarded work — when resolution metadata is still in flight;
/// the message is then deferred and retried on the next poll.
using request = std::function<bool()>;

/// Deadline-aware backoff for every blocking wait of the RTS.  Starts with
/// a cheap profile (64 yields, then 50us naps) so uncontended
/// waits cost the same; a wait that keeps not progressing escalates the nap
/// x2 every 16 sleeps (capped at 500us) with per-waiter jitter so a herd of
/// blocked locations does not re-probe in lockstep.  Each escalation counts
/// as a bounded retry in robust.retries, and once the accumulated napped
/// time passes the watchdog deadline the wait dumps diagnostics naming
/// itself (`what`) instead of spinning silently — every converted wait loop
/// gets hang coverage for free.  Progress resets the profile.
class deadline_backoff {
 public:
  explicit deadline_backoff(char const* what) noexcept : m_what(what) {}

  void pause() noexcept
  {
    auto& idle = metrics::idle();
    if (m_spins++ < 64) {
      idle.spins += 1;
      std::this_thread::yield();
      return;
    }
    unsigned const j = (m_jitter = m_jitter * 1103515245u + 12345u) >> 28;
    unsigned const nap = m_sleep_us + (m_sleep_us / 8) * (j % 5); // <= +50%
    idle.sleeps += 1;
    idle.nap_us += nap;
    std::this_thread::sleep_for(std::chrono::microseconds(nap));
    m_napped_us += nap;
    if (++m_sleeps_at_tier >= 16 && m_sleep_us < 500) {
      m_sleep_us = std::min(500u, m_sleep_us * 2);
      m_sleeps_at_tier = 0;
      robust::tl().retries += 1;
    }
    std::uint64_t const wd = fault::watchdog_ms();
    if (wd != 0 && m_napped_us > wd * 1000) {
      fault::watchdog_fire(m_what);
      m_napped_us = 0; // re-arm: a still-stuck wait dumps again next deadline
    }
  }

  void reset() noexcept
  {
    m_spins = 0;
    m_sleep_us = 50;
    m_sleeps_at_tier = 0;
    m_napped_us = 0;
  }

 private:
  char const* m_what;
  unsigned m_spins = 0;
  unsigned m_sleep_us = 50;
  unsigned m_sleeps_at_tier = 0;
  std::uint64_t m_napped_us = 0;
  unsigned m_jitter = static_cast<unsigned>(
      reinterpret_cast<std::uintptr_t>(this)); // per-waiter LCG seed
};

/// Sense-reversing barrier across all locations of the execution.  `arrive`
/// and `passed` are split so callers can drive communication progress while
/// waiting (a blocked sync_rmi peer must be serviced even from a barrier).
class spmd_barrier {
 public:
  explicit spmd_barrier(unsigned n) noexcept : m_n(n) {}

  /// Registers arrival; returns the generation token to wait on.
  [[nodiscard]] unsigned arrive() noexcept
  {
    unsigned const gen = m_generation.load(std::memory_order_acquire);
    if (m_count.fetch_add(1, std::memory_order_acq_rel) + 1 == m_n) {
      m_count.store(0, std::memory_order_relaxed);
      m_generation.fetch_add(1, std::memory_order_release);
    }
    return gen;
  }

  [[nodiscard]] bool passed(unsigned gen) const noexcept
  {
    return m_generation.load(std::memory_order_acquire) != gen;
  }

  void arrive_and_wait() noexcept
  {
    unsigned const gen = arrive();
    deadline_backoff bo("rmi.barrier");
    while (!passed(gen))
      bo.pause();
  }

 private:
  unsigned const m_n;
  std::atomic<unsigned> m_count{0};
  std::atomic<unsigned> m_generation{0};
};

/// FIFO inbox of one location.  A single queue per destination preserves
/// per-source program order (each source enqueues in program order).
/// An atomic element count lets the owner's poll loop skip the mutex when
/// the inbox is empty — polling is the fabric of every wait loop, so the
/// empty probe must not serialize against concurrent senders.
class inbox {
 public:
  void push(request r)
  {
    std::lock_guard lock(m_mutex);
    m_queue.push_back(std::move(r));
    m_count.fetch_add(1, std::memory_order_release);
  }

  void push_batch(std::vector<request>&& batch)
  {
    std::lock_guard lock(m_mutex);
    for (auto& r : batch)
      m_queue.push_back(std::move(r));
    m_count.fetch_add(batch.size(), std::memory_order_release);
  }

  [[nodiscard]] bool pop(request& out)
  {
    if (m_count.load(std::memory_order_acquire) == 0)
      return false; // empty fast path: no lock; a racing push is caught
                    // by the caller's next poll round
    std::lock_guard lock(m_mutex);
    if (m_queue.empty())
      return false;
    out = std::move(m_queue.front());
    m_queue.pop_front();
    m_count.fetch_sub(1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const
  {
    return m_count.load(std::memory_order_acquire) == 0;
  }

  /// Current element count (cross-thread readable: used by the inbox-depth
  /// gauge and the watchdog dump).
  [[nodiscard]] std::size_t size() const noexcept
  {
    return m_count.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex m_mutex;
  std::deque<request> m_queue;
  std::atomic<std::size_t> m_count{0};
};

/// Registry of p_object representatives on one location.
class object_registry {
 public:
  void insert(rmi_handle h, void* p)
  {
    std::lock_guard lock(m_mutex);
    m_objects[h] = p;
  }

  void erase(rmi_handle h)
  {
    std::lock_guard lock(m_mutex);
    m_objects.erase(h);
  }

  [[nodiscard]] void* lookup(rmi_handle h) const
  {
    std::lock_guard lock(m_mutex);
    auto it = m_objects.find(h);
    return it == m_objects.end() ? nullptr : it->second;
  }

 private:
  mutable std::mutex m_mutex;
  std::unordered_map<rmi_handle, void*> m_objects;
};

/// One slot of the tree-collective cell array (see collectives.hpp).  A
/// publisher stores a pointer to its local data and then the operation
/// token into `seq` (release); the single designated reader spins on `seq`,
/// copies the data out, and stores the token into `ack` — only then may the
/// publisher reuse or destroy the pointed-to data.  Tokens are the
/// per-location count of tree collectives, identical on every location by
/// SPMD order, so a cell never needs resetting between operations.
struct alignas(64) coll_cell {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ack{0};
  void const* data = nullptr;
};

/// Receiver-side duplicate-suppression window for one sender (sequenced
/// delivery).  Sequence numbers at or below `contiguous` have executed; the
/// sparse `ahead` set holds numbers that executed out of order (injected
/// reordering) until the gap closes.  Touched only by the owning location's
/// poll thread, so no synchronization is needed.
struct dedup_window {
  std::uint64_t contiguous = 0;
  std::unordered_set<std::uint64_t> ahead;

  [[nodiscard]] bool is_dup(std::uint64_t s) const
  {
    return s <= contiguous || ahead.count(s) != 0;
  }

  void mark(std::uint64_t s)
  {
    if (s == contiguous + 1) {
      ++contiguous;
      while (ahead.erase(contiguous + 1) != 0)
        ++contiguous;
    } else {
      ahead.insert(s);
    }
  }
};

/// One sender-side held message (injected delay): delivered to `dest` once
/// `ttl_polls` of the sender's polls have elapsed.  Poll count is logical
/// time — deterministic, and fence rounds keep polling, so a held message
/// can never be stranded.
struct held_msg {
  location_id dest = invalid_location;
  request r;
  unsigned ttl_polls = 0;
  std::size_t bytes = 0;
};

struct location_state {
  inbox in;
  object_registry registry;
  std::deque<request> deferred; ///< requests whose target is not yet registered
  /// deferred.size() mirror readable from other threads (watchdog dump)
  std::atomic<std::uint32_t> deferred_depth{0};
  /// per-destination outgoing sequence numbers (sequenced delivery)
  std::vector<std::uint64_t> seq_to;
  /// per-sender duplicate-suppression windows (sequenced delivery)
  std::vector<dedup_window> dedup;
  /// messages held back by injected delay, released by this location's polls
  std::vector<held_msg> held;
  std::uint32_t next_collective_counter = 0;
  std::uint32_t next_local_counter = 0;
  /// outgoing aggregation buffers, one per destination
  std::vector<std::vector<request>> agg;
  /// marshaled payload bytes pending in each aggregation buffer
  std::vector<std::uint64_t> agg_bytes;
  location_stats stats;
  /// scratch slot for collective operations (flat value-exchange protocol)
  void const* slot = nullptr;
  /// tree-collective cells: index 0 is the remainder pre-fold, 1+r is
  /// doubling/binomial round r (masks fit 32 rounds), the last is the
  /// remainder post-fold
  static constexpr unsigned num_coll_cells = 40;
  coll_cell cells[num_coll_cells];
  /// count of tree collectives entered (the cell-protocol token)
  std::uint64_t coll_token = 0;
};

class runtime_impl {
 public:
  explicit runtime_impl(runtime_config cfg)
      : m_cfg(cfg), m_barrier(cfg.num_locations), m_locs(cfg.num_locations)
  {
    for (auto& l : m_locs)
      l = std::make_unique<location_state>();
    for (auto& l : m_locs) {
      l->agg.resize(cfg.num_locations);
      l->agg_bytes.resize(cfg.num_locations, 0);
      l->seq_to.resize(cfg.num_locations, 0);
      l->dedup.resize(cfg.num_locations);
    }
    // Latched once per execution: arming the fault layer after execute()
    // starts cannot retroactively sequence in-flight traffic, so arm first.
    m_sequenced = cfg.sequenced_delivery || fault::armed();
  }

  /// Whether queued delivery carries per-sender sequence numbers with
  /// receiver-side duplicate suppression (see runtime_config).
  [[nodiscard]] bool sequenced() const noexcept { return m_sequenced; }

  [[nodiscard]] runtime_config const& config() const noexcept { return m_cfg; }
  [[nodiscard]] unsigned num_locations() const noexcept
  {
    return m_cfg.num_locations;
  }
  [[nodiscard]] location_state& loc(location_id id) noexcept
  {
    return *m_locs[id];
  }
  [[nodiscard]] spmd_barrier& barrier() noexcept { return m_barrier; }

  std::atomic<std::uint64_t> total_sent{0};
  std::atomic<std::uint64_t> total_executed{0};
  /// Number of locations currently inside poll_once; the fence takes its
  /// termination verdict only when this is zero, so the sent/executed
  /// counters are frozen while being read.
  std::atomic<int> active_polls{0};

 private:
  runtime_config m_cfg;
  spmd_barrier m_barrier;
  std::vector<std::unique_ptr<location_state>> m_locs;
  bool m_sequenced = false;
};

// Defined in runtime.cpp.
extern runtime_impl* g_runtime;
extern thread_local location_id tl_location;

[[nodiscard]] inline runtime_impl& rt() noexcept
{
  assert(g_runtime != nullptr && "stapl API used outside stapl::execute()");
  return *g_runtime;
}

} // namespace runtime_detail

// ---------------------------------------------------------------------------
// SPMD execution
// ---------------------------------------------------------------------------

/// Runs `spmd` on `cfg.num_locations` locations in SPMD fashion, joining all
/// of them (and propagating the first exception) before returning.  An
/// implicit rmi_fence runs after `spmd` completes on every location.
void execute(runtime_config const& cfg, std::function<void()> spmd);

/// Convenience overload: `p` locations with default configuration.
void execute(unsigned p, std::function<void()> spmd);

/// Identifier of the calling location.
[[nodiscard]] inline location_id this_location() noexcept
{
  return runtime_detail::tl_location;
}

/// Number of locations of the current execution.
[[nodiscard]] inline unsigned num_locations() noexcept
{
  return runtime_detail::rt().num_locations();
}

[[nodiscard]] inline transport_kind current_transport() noexcept
{
  return runtime_detail::rt().config().transport;
}

/// Statistics of the calling location.  Compatibility shim: the same
/// counters surface through `metrics::snapshot()` under the "rmi." keys.
[[nodiscard]] inline location_stats const& my_stats() noexcept
{
  return runtime_detail::rt().loc(this_location()).stats;
}

/// Resets only the runtime family; `metrics::reset_all()` resets every
/// registered stats family in one call.
inline void reset_my_stats() noexcept
{
  runtime_detail::rt().loc(this_location()).stats = {};
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

namespace runtime_detail {

/// Hands one destination's aggregation buffer to its inbox as a single
/// message, updating the message and batching counters.
inline void flush_dest(location_state& self, location_id d)
{
  auto& buf = self.agg[d];
  self.stats.msgs_sent += 1;
  self.stats.msg_bytes += self.agg_bytes[d];
  if (buf.size() > 1) {
    // A coalesced message: several RMIs paid one delivery.
    self.stats.agg_batches += 1;
    self.stats.agg_batch_bytes += self.agg_bytes[d];
  }
  self.agg_bytes[d] = 0;
  auto const fo = STAPL_FAULT(fault::site::rmi_flush);
  if ((fo.actions & fault::act_reorder) && buf.size() > 1)
    std::reverse(buf.begin(), buf.end()); // whole-batch reorder on the wire
  STAPL_TRACE(trace::event_kind::msg_flush, buf.size());
  rt().loc(d).in.push_batch(std::move(buf));
  buf.clear();
}

/// Flushes this location's outgoing aggregation buffers.
inline void flush_aggregation()
{
  auto& self = rt().loc(tl_location);
  for (location_id d = 0; d < rt().num_locations(); ++d) {
    if (self.agg[d].empty())
      continue;
    flush_dest(self, d);
  }
}

/// Executes one round of incoming requests; returns true if any executed.
inline bool poll_once()
{
  struct poll_guard {
    poll_guard() { rt().active_polls.fetch_add(1, std::memory_order_acq_rel); }
    ~poll_guard() { rt().active_polls.fetch_sub(1, std::memory_order_acq_rel); }
  } guard;

  auto& self = rt().loc(tl_location);
  STAPL_FAULT_POINT(fault::site::rmi_poll); // straggler nap
  flush_aggregation();

  // Release held (delay-injected) messages whose ttl expired.  Poll count
  // is logical time: deterministic, and fence rounds keep polling, so every
  // held message is eventually delivered.
  if (!self.held.empty()) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < self.held.size(); ++i) {
      if (--self.held[i].ttl_polls == 0) {
        self.stats.msgs_sent += 1;
        self.stats.msg_bytes += self.held[i].bytes;
        rt().loc(self.held[i].dest).in.push(std::move(self.held[i].r));
      } else {
        if (w != i)
          self.held[w] = std::move(self.held[i]);
        ++w;
      }
    }
    self.held.resize(w);
  }

  bool progressed = false;

  // Retry deferred requests first (in order) to preserve FIFO delivery.
  if (!self.deferred.empty()) {
    std::deque<request> still;
    while (!self.deferred.empty()) {
      request r = std::move(self.deferred.front());
      self.deferred.pop_front();
      if (r()) {
        progressed = true;
        self.stats.rmis_executed += 1;
        STAPL_TRACE(trace::event_kind::rmi_execute);
        rt().total_executed.fetch_add(1, std::memory_order_acq_rel);
      } else {
        still.push_back(std::move(r));
      }
    }
    self.deferred = std::move(still);
  }

  if (std::size_t const depth = self.in.size();
      depth > self.stats.inbox_depth)
    self.stats.inbox_depth = depth;

  request r;
  while (self.in.pop(r)) {
    if (r()) {
      progressed = true;
      self.stats.rmis_executed += 1;
      STAPL_TRACE(trace::event_kind::rmi_execute);
      rt().total_executed.fetch_add(1, std::memory_order_acq_rel);
    } else {
      self.deferred.push_back(std::move(r));
    }
  }

  std::size_t const parked = self.deferred.size();
  self.deferred_depth.store(static_cast<std::uint32_t>(parked),
                            std::memory_order_relaxed);
  if (parked > self.stats.deferred_hw) {
    self.stats.deferred_hw = parked;
    if (parked > rt().config().max_deferred) {
      // Parked requests wait for a registration; past the bound that
      // registration is never coming.  Dump once per crossing, then trap
      // in debug builds rather than grow silently.
      fault::watchdog_fire("rmi.deferred_bound");
      assert(false && "deferred-retry queue exceeded max_deferred");
    }
  }
  return progressed;
}

/// Marshaled size of one RMI argument: `packed_size` when the typer knows
/// the type, its object size otherwise (e.g. closures the queue transport
/// hands over by value rather than by wire).
template <typename T>
[[nodiscard]] inline std::size_t wire_size_of(T const& t)
{
  if constexpr (wire_measurable_v<T>)
    return packed_size(t);
  else
    return sizeof(T);
}

/// Wire footprint of an RMI: handle word plus every marshaled argument.
template <typename... Ts>
[[nodiscard]] inline std::size_t wire_size(Ts const&... ts)
{
  return (sizeof(rmi_handle) + ... + wire_size_of(ts));
}

inline void enqueue_remote(location_id dest, request r, std::size_t bytes = 0)
{
  auto& self = rt().loc(tl_location);
  self.stats.rmis_sent += 1;
  self.stats.rmi_bytes += bytes;
  STAPL_TRACE(trace::event_kind::rmi_send, bytes);
  rt().total_sent.fetch_add(1, std::memory_order_acq_rel);

  if (rt().sequenced()) {
    // Sequenced delivery: wrap the request with this sender's next sequence
    // number toward `dest`; the receiver's window suppresses duplicates.
    // The wrapper marks the number only once the inner request completes
    // (a deferred retry must not be mistaken for a duplicate), and a
    // suppressed duplicate reports true so the fence counts it executed.
    std::uint64_t const seq = ++self.seq_to[dest];
    location_id const src = tl_location;
    r = [src, seq, inner = std::move(r)]() mutable -> bool {
      auto& win = rt().loc(tl_location).dedup[src];
      if (win.is_dup(seq)) {
        robust::tl().dups_suppressed += 1;
        return true;
      }
      if (!inner())
        return false;
      win.mark(seq);
      return true;
    };
  }

  auto const fo = STAPL_FAULT(fault::site::rmi_enqueue);
  if (fo.actions & fault::act_duplicate) {
    // The duplicate is a full pending RMI for termination purposes: it was
    // "sent", and its suppressed delivery will count as executed.
    self.stats.rmis_sent += 1;
    rt().total_sent.fetch_add(1, std::memory_order_acq_rel);
    self.agg[dest].push_back(r); // copy; the original continues below
  }
  if (fo.actions & fault::act_delay) {
    self.held.push_back(
        {dest, std::move(r), fo.delay_polls != 0 ? fo.delay_polls : 1, bytes});
    return;
  }

  self.agg_bytes[dest] += bytes;
  auto& buf = self.agg[dest];
  buf.push_back(std::move(r));
  if ((fo.actions & fault::act_reorder) && buf.size() >= 2)
    std::swap(buf[buf.size() - 1], buf[buf.size() - 2]);
  if (fo.actions & fault::act_alloc_fail) {
    flush_dest(self, dest); // buffer "allocation failed": degraded batching
    return;
  }
  if (buf.size() >= rt().config().aggregation ||
      self.agg_bytes[dest] >= rt().config().agg_max_bytes)
    flush_dest(self, dest);
}

/// Looks up a registered object on `loc`, spinning until it appears (bounded
/// by SPMD program order: the sender can only know the handle after the
/// owner's construction statement).
template <typename Obj>
[[nodiscard]] Obj* lookup_wait(location_id loc, rmi_handle h)
{
  // Deadline-covered but non-polling: this can run inside a poll handler
  // (get_registered_object_at from forwarded work), where re-entering
  // poll_once would recurse.
  deadline_backoff bo("rmi.lookup");
  for (;;) {
    if (void* p = rt().loc(loc).registry.lookup(h))
      return static_cast<Obj*>(p);
    bo.pause();
  }
}

} // namespace runtime_detail

/// Drives communication progress on the calling location.  Returns whether
/// any request was executed — pacing loops that poll while ahead of
/// schedule should yield when it reports no work, or on oversubscribed
/// cores the busy-wait starves the locations doing real serving.
inline bool rmi_poll()
{
  return runtime_detail::poll_once();
}

/// Records a locally resolved container method in the performance-monitor
/// counters (the invoke skeleton's local fast path bypasses the RMI layer).
inline void note_local_invocation() noexcept
{
  runtime_detail::rt().loc(this_location()).stats.local_rmis += 1;
}

/// Local representative of a registered p_object (nullptr if none).  Lets
/// RMI handlers reach sibling objects (e.g. an algorithm's frontier buffer)
/// through their handles.
template <typename T>
[[nodiscard]] T* get_registered_object(rmi_handle h)
{
  using namespace runtime_detail;
  return static_cast<T*>(rt().loc(this_location()).registry.lookup(h));
}

/// Representative of a registered p_object on location `loc` (spins until
/// the owner's construction statement registers it).  Routed work (e.g. a
/// directory-forwarded request) uses this to reach the representative it
/// was delivered to: under the direct transport handlers execute on caller
/// threads, so this_location() does not identify the executing
/// representative.
template <typename T>
[[nodiscard]] T* get_registered_object_at(location_id loc, rmi_handle h)
{
  return runtime_detail::lookup_wait<T>(loc, h);
}

/// Re-enqueues work into this location's own inbox, to be retried on a later
/// poll.  Used by method forwarding when resolution metadata has not arrived
/// yet (e.g. a directory registration still in flight): executing inline
/// would recurse, so the request is parked behind the pending traffic.
/// Counts as a pending RMI for fence termination purposes.
///
/// `f` may return void (executed exactly once on the next poll) or bool:
/// a bool-returning `f` that yields false is parked on the deferred queue
/// and retried once per poll round until it reports completion, without
/// burning a fresh enqueue per attempt.  Either flavor keeps the fence's
/// termination detection pessimistic until the work actually runs.
template <typename F>
void post_to_self(F f)
{
  using namespace runtime_detail;
  auto& self = rt().loc(this_location());
  self.stats.rmis_sent += 1;
  rt().total_sent.fetch_add(1, std::memory_order_acq_rel);
  self.in.push([f = std::move(f)]() mutable -> bool {
    if constexpr (std::is_same_v<std::invoke_result_t<F&>, bool>) {
      return f();
    } else {
      f();
      return true;
    }
  });
}

namespace runtime_detail {

/// Barrier that keeps servicing incoming RMIs while waiting, so a peer
/// blocked on a synchronous response from this location cannot deadlock the
/// collective.
inline void polling_barrier_wait()
{
  auto& b = rt().barrier();
  unsigned const gen = b.arrive();
  deadline_backoff bo("rmi.barrier");
  while (!b.passed(gen)) {
    if (poll_once())
      bo.reset();
    else
      bo.pause();
  }
}

} // namespace runtime_detail

/// Collective synchronization: returns once every location has entered the
/// fence and no pending RMI remains in the system (termination detection).
void rmi_fence();

/// Barrier without the termination-detection drain (still polls).
inline void location_barrier()
{
  runtime_detail::polling_barrier_wait();
}

// ---------------------------------------------------------------------------
// p_object — the basic shared-object concept (Ch. III.B)
// ---------------------------------------------------------------------------

/// Tag requesting registration on the constructing location only.
struct single_location_t {
  explicit single_location_t() = default;
};
inline constexpr single_location_t single_location{};

/// Base class of every parallel object.  The representative of a p_object on
/// each location registers with the RTS to enable RMIs between the
/// representatives.  Collective construction (default) must happen in the
/// same order on all locations, like any SPMD registration scheme.
class p_object {
 public:
  p_object()
      : m_handle(make_handle(
            collective_scope,
            runtime_detail::rt().loc(this_location()).next_collective_counter++)),
        m_location(this_location()),
        m_num_locations(num_locations())
  {
    runtime_detail::rt().loc(m_location).registry.insert(m_handle, this);
  }

  explicit p_object(single_location_t)
      : m_handle(make_handle(
            this_location(),
            runtime_detail::rt().loc(this_location()).next_local_counter++)),
        m_location(this_location()),
        m_num_locations(1)
  {
    runtime_detail::rt().loc(m_location).registry.insert(m_handle, this);
  }

  p_object(p_object const&) = delete;
  p_object& operator=(p_object const&) = delete;

  virtual ~p_object()
  {
    runtime_detail::rt().loc(m_location).registry.erase(m_handle);
  }

  [[nodiscard]] rmi_handle get_handle() const noexcept { return m_handle; }
  [[nodiscard]] location_id get_location_id() const noexcept
  {
    return m_location;
  }
  [[nodiscard]] unsigned get_num_locations() const noexcept
  {
    return m_num_locations;
  }

 private:
  rmi_handle m_handle;
  location_id m_location;
  unsigned m_num_locations;
};

// ---------------------------------------------------------------------------
// Futures (split-phase execution, Ch. V.B / VII.B)
// ---------------------------------------------------------------------------

/// Future returned by split-phase methods.  `get()` drives communication
/// progress while waiting, so two locations may wait on each other's
/// split-phase results without deadlock.
template <typename R>
class pc_future {
 public:
  struct state {
    std::atomic<bool> ready{false};
    std::optional<R> value;
  };

  pc_future() = default;
  explicit pc_future(std::shared_ptr<state> s) noexcept : m_state(std::move(s))
  {}

  [[nodiscard]] bool valid() const noexcept { return m_state != nullptr; }

  [[nodiscard]] bool is_ready() const noexcept
  {
    return m_state && m_state->ready.load(std::memory_order_acquire);
  }

  /// Blocks (polling) until the value arrives; consumes the future.
  [[nodiscard]] R get()
  {
    assert(valid());
    runtime_detail::deadline_backoff bo("rmi.future");
    while (!m_state->ready.load(std::memory_order_acquire)) {
      if (runtime_detail::poll_once())
        bo.reset();
      else
        bo.pause();
    }
    return std::move(*m_state->value);
  }

 private:
  std::shared_ptr<state> m_state;
};

// ---------------------------------------------------------------------------
// RMI primitives
// ---------------------------------------------------------------------------

namespace runtime_detail {

template <typename Obj, typename F, typename Tuple>
decltype(auto) apply_on(Obj& o, F& f, Tuple& t)
{
  return std::apply(
      [&](auto&... args) -> decltype(auto) { return std::invoke(f, o, args...); },
      t);
}

} // namespace runtime_detail

/// Queued RMI: like async_rmi, but always delivered through the
/// destination's inbox — even under the direct transport, and even to
/// self.  Two guarantees async_rmi cannot give there: messages pushed by
/// one sender execute in push order, and the send never executes handler
/// code inline (so it is safe while holding locks the handler might also
/// take on another representative).  Delivery happens at the destination's
/// next poll; completion by the next rmi_fence.
template <typename Obj, typename F, typename... Args>
void queued_rmi(location_id dest, rmi_handle h, F f, Args... args)
{
  using namespace runtime_detail;
  std::size_t const bytes = wire_size(f, args...);
  enqueue_remote(dest,
                 [dest, h, f = std::move(f),
                  tup = std::make_tuple(std::move(args)...)]() mutable -> bool {
                   void* p = rt().loc(dest).registry.lookup(h);
                   if (p == nullptr)
                     return false;
                   apply_on(*static_cast<Obj*>(p), f, tup);
                   return true;
                 },
                 bytes);
}

/// Asynchronous RMI: executes `f(obj_at(dest), args...)` on the destination
/// representative of the object identified by `h`; returns immediately
/// (Ch. III.B).  Completion is guaranteed by the next rmi_fence, or — for
/// same-element accesses — by the acknowledgment rules of Ch. VII.B.
template <typename Obj, typename F, typename... Args>
void async_rmi(location_id dest, rmi_handle h, F f, Args... args)
{
  using namespace runtime_detail;
  if (dest == this_location()) {
    auto& self = rt().loc(dest);
    self.stats.local_rmis += 1;
    Obj* o = static_cast<Obj*>(self.registry.lookup(h));
    assert(o != nullptr && "async_rmi: local object not registered");
    std::invoke(f, *o, std::move(args)...);
    return;
  }
  if (current_transport() == transport_kind::direct) {
    auto& self = rt().loc(this_location());
    self.stats.rmis_sent += 1;
    std::size_t const bytes = wire_size(f, args...);
    self.stats.rmi_bytes += bytes;
    STAPL_TRACE(trace::event_kind::rmi_send, bytes);
    Obj* o = lookup_wait<Obj>(dest, h);
    std::invoke(f, *o, std::move(args)...);
    return;
  }
  queued_rmi<Obj>(dest, h, std::move(f), std::move(args)...);
}

/// Synchronous RMI: executes `f` on the destination representative and
/// blocks (driving progress) until the result is available.
template <typename Obj, typename F, typename... Args>
[[nodiscard]] auto sync_rmi(location_id dest, rmi_handle h, F f, Args... args)
{
  using namespace runtime_detail;
  using R = decltype(std::invoke(f, std::declval<Obj&>(), args...));

  if (dest == this_location()) {
    auto& self = rt().loc(dest);
    self.stats.local_rmis += 1;
    Obj* o = static_cast<Obj*>(self.registry.lookup(h));
    assert(o != nullptr && "sync_rmi: local object not registered");
    return std::invoke(f, *o, std::move(args)...);
  }

  // Remote round trip from here on — the tail-latency-relevant part.
  latency::timed_op lat_scope(latency::op::rmi_sync);

  if (current_transport() == transport_kind::direct) {
    auto& self = rt().loc(this_location());
    self.stats.rmis_sent += 1;
    self.stats.sync_rmis += 1;
    std::size_t const bytes = wire_size(f, args...);
    self.stats.rmi_bytes += bytes;
    STAPL_TRACE(trace::event_kind::rmi_send, bytes);
    Obj* o = lookup_wait<Obj>(dest, h);
    return std::invoke(f, *o, std::move(args)...);
  }

  struct sync_state {
    std::atomic<bool> done{false};
    std::optional<R> value;
  } st;

  rt().loc(this_location()).stats.sync_rmis += 1;
  std::size_t const bytes = wire_size(f, args...);
  enqueue_remote(dest,
                 [dest, h, &st, f = std::move(f),
                  tup = std::make_tuple(std::move(args)...)]() mutable -> bool {
                   void* p = rt().loc(dest).registry.lookup(h);
                   if (p == nullptr)
                     return false;
                   st.value.emplace(apply_on(*static_cast<Obj*>(p), f, tup));
                   st.done.store(true, std::memory_order_release);
                   return true;
                 },
                 bytes);
  runtime_detail::flush_aggregation();
  runtime_detail::deadline_backoff bo("rmi.sync");
  while (!st.done.load(std::memory_order_acquire)) {
    if (runtime_detail::poll_once())
      bo.reset();
    else
      bo.pause();
  }
  return std::move(*st.value);
}

/// Split-phase RMI (Ch. V.B): returns a future immediately; the invocation
/// executes asynchronously and fulfils the future.  `future.get()` blocks
/// until the acknowledgment arrives, at the latest at the next fence.
template <typename Obj, typename F, typename... Args>
[[nodiscard]] auto opaque_rmi(location_id dest, rmi_handle h, F f, Args... args)
{
  using namespace runtime_detail;
  using R = decltype(std::invoke(f, std::declval<Obj&>(), args...));
  auto st = std::make_shared<typename pc_future<R>::state>();

  if (dest == this_location()) {
    auto& self = rt().loc(dest);
    self.stats.local_rmis += 1;
    Obj* o = static_cast<Obj*>(self.registry.lookup(h));
    assert(o != nullptr && "opaque_rmi: local object not registered");
    st->value.emplace(std::invoke(f, *o, std::move(args)...));
    st->ready.store(true, std::memory_order_release);
    return pc_future<R>(st);
  }

  if (current_transport() == transport_kind::direct) {
    auto& self = rt().loc(this_location());
    self.stats.rmis_sent += 1;
    std::size_t const bytes = wire_size(f, args...);
    self.stats.rmi_bytes += bytes;
    STAPL_TRACE(trace::event_kind::rmi_send, bytes);
    Obj* o = lookup_wait<Obj>(dest, h);
    st->value.emplace(std::invoke(f, *o, std::move(args)...));
    st->ready.store(true, std::memory_order_release);
    return pc_future<R>(st);
  }

  std::size_t const bytes = wire_size(f, args...);
  enqueue_remote(dest,
                 [dest, h, st, f = std::move(f),
                  tup = std::make_tuple(std::move(args)...)]() mutable -> bool {
                   void* p = rt().loc(dest).registry.lookup(h);
                   if (p == nullptr)
                     return false;
                   st->value.emplace(apply_on(*static_cast<Obj*>(p), f, tup));
                   st->ready.store(true, std::memory_order_release);
                   return true;
                 },
                 bytes);
  return pc_future<R>(st);
}

// ---------------------------------------------------------------------------
// Collective operations (Ch. III.B) — flat value-exchange protocol
// ---------------------------------------------------------------------------
//
// `exchange` is the O(P)-reads-per-participant protocol: every location
// publishes a pointer, a barrier makes all pointers visible, everyone reads
// what it needs, and a second barrier releases the slots.  It remains the
// small-P fallback and the basis of exclusive_scan; the public allreduce /
// broadcast / reduce / allgather dispatchers live in collectives.hpp
// (included at the bottom of this header) and switch between this protocol
// and the tree engine.

namespace runtime_detail {

/// Value-exchange protocol (see above).  Note the two barriers make every
/// flat collective a location barrier as a side effect; the tree
/// collectives deliberately do not provide that — no caller relies on it.
template <typename T, typename Reader>
void exchange(T const& mine, Reader reader)
{
  auto& self = rt().loc(tl_location);
  self.slot = &mine;
  polling_barrier_wait();
  reader();
  polling_barrier_wait();
  self.slot = nullptr;
}

/// Flat all-reduce.  Folds all P slots in rank order 0..P-1 on every
/// location, so the result is identical everywhere and agrees with the
/// tree engine even for non-commutative associative operators (the
/// recursive-doubling combine preserves rank order) — auto-select mode
/// never changes an answer by switching engines.
template <typename T, typename BinaryOp>
[[nodiscard]] T flat_allreduce(T const& value, BinaryOp op)
{
  T result = value;
  exchange(value, [&] {
    result = *static_cast<T const*>(rt().loc(0).slot);
    for (location_id l = 1; l < rt().num_locations(); ++l)
      result = op(std::move(result),
                  *static_cast<T const*>(rt().loc(l).slot));
  });
  return result;
}

/// Flat broadcast from `root`.
template <typename T>
[[nodiscard]] T flat_broadcast(location_id root, T const& value)
{
  T result{};
  exchange(value, [&] {
    result = *static_cast<T const*>(rt().loc(root).slot);
  });
  return result;
}

/// Flat reduce-to-root.  Folds in rank order rotated to start at `root`
/// (matching the binomial tree's combine order, so flat and tree agree
/// even for non-commutative associative operators).
template <typename T, typename BinaryOp>
[[nodiscard]] T flat_reduce(location_id root, T const& value, BinaryOp op)
{
  T result = value;
  exchange(value, [&] {
    if (tl_location != root)
      return;
    unsigned const p = rt().num_locations();
    result = *static_cast<T const*>(rt().loc(root).slot);
    for (unsigned i = 1; i < p; ++i) {
      location_id const l = (root + i) % p;
      result = op(result, *static_cast<T const*>(rt().loc(l).slot));
    }
  });
  return result;
}

/// Flat allgather.
template <typename T>
[[nodiscard]] std::vector<T> flat_allgather(T const& value)
{
  std::vector<T> result(rt().num_locations());
  exchange(value, [&] {
    for (location_id l = 0; l < rt().num_locations(); ++l)
      result[l] = *static_cast<T const*>(rt().loc(l).slot);
  });
  return result;
}

} // namespace runtime_detail

/// Exclusive prefix over location ids: location i receives
/// op(value_0, ..., value_{i-1}); location 0 receives `identity`.  Stays on
/// the flat protocol: every location reads every lower rank's value anyway,
/// so a tree saves nothing.
template <typename T, typename BinaryOp>
[[nodiscard]] T exclusive_scan(T const& value, BinaryOp op, T identity)
{
  using namespace runtime_detail;
  T result = identity;
  exchange(value, [&] {
    for (location_id l = 0; l < tl_location; ++l)
      result = op(result, *static_cast<T const*>(rt().loc(l).slot));
  });
  return result;
}

} // namespace stapl

// Tree-structured collectives layer: the public allreduce / broadcast /
// reduce / allgather dispatchers plus the global metrics/latency merges.
// Included last so it can use every runtime primitive above; its include
// guard makes either inclusion order work.
#include "collectives.hpp"

#endif
