#ifndef STAPL_RUNTIME_LOCALITY_HPP
#define STAPL_RUNTIME_LOCALITY_HPP

// The locality pipeline's shared vocabulary (dissertation Ch. III/VII
// locality discussion; cf. BCL's locality-annotated remote references).
//
// Containers, views, the task-graph executor and the load balancer used to
// speak different dialects about *where data lives*: views handed the
// executor bare GID vectors, the executor stole blindly, and the balancer
// planned element moves with no knowledge of where chunk tasks actually
// ran.  This header defines the one abstraction they all consume:
//
//   * chunk_descriptor — a coarsened bView piece annotated with its owning
//     location, a cached-at hint (a peer believed to hold the chunk's data
//     warm, fed back from previous executions) and a byte estimate.  Every
//     view's chunks(grain) produces these; the executor places, steals and
//     reports against them.  The descriptor splits in two on the wire:
//     a compact, payload-free chunk_wire (owner, cached-at, digest bounds,
//     byte/element counts) that is replicated to every location so tasks
//     can spawn on remote owners, and the run-encoded GID payload
//     (gid_sequence, serialization.hpp), which only ever travels
//     point-to-point — producer to owner when a repartitioning view's deal
//     crosses the storage distribution, owner to thief inside a steal
//     grant.  Metadata is cheap to replicate; element identity is not.
//   * task_graph_stats — the executor's per-location counters.  Beyond
//     monitoring they are *signals*: the grain tuner adapts chunk sizes
//     from them, and the load balancer folds tasks_stolen/lost into its
//     per-location load model so chunk placement and element placement
//     converge instead of fighting.
//   * steal_victim_order — the deterministic victim preference of the
//     executor: cache-warm victims (stealable chunks annotated with this
//     location) first, then descending owned-task count.
//   * grain_tuner / chunk_affinity_table — the per-container feedback
//     state: steal/idle counters of the previous graph tune default_grain,
//     and lost-chunk placement events stamp the next graph's cached_at
//     hints.
//
// Layering: this header depends only on runtime/types.hpp and
// runtime/serialization.hpp (both self-contained), so the views, core and
// runtime layers can all include it without cycles.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <type_traits>
#include <vector>

#include "serialization.hpp"
#include "types.hpp"

namespace stapl {

/// Per-location executor counters (surfaced like location_stats).  Consumed
/// as feedback by the grain tuner and the load balancer (see header note).
struct task_graph_stats {
  std::uint64_t tasks_run = 0;     ///< tasks executed on this location
  std::uint64_t tasks_stolen = 0;  ///< of which stolen from another owner
  std::uint64_t tasks_lost = 0;    ///< owned tasks executed elsewhere
  std::uint64_t steal_grants = 0;  ///< probes that returned work (>= 1 task)
  std::uint64_t steal_fail = 0;    ///< steal attempts that came back empty
  std::uint64_t values_sent = 0;   ///< dependence values shipped off-location
  /// Spawn-path bytes this location shipped to peers: the wire-form
  /// descriptor exchange plus any point-to-point payload forwards
  /// (sender-side, packed sizes — what a network transport would move).
  std::uint64_t spawn_bytes = 0;
  /// Chunk payloads forwarded producer→owner (the repartitioning-view
  /// case where a chunk's producer is not the location storing it).
  std::uint64_t payload_forwards = 0;

  task_graph_stats& operator+=(task_graph_stats const& o) noexcept
  {
    tasks_run += o.tasks_run;
    tasks_stolen += o.tasks_stolen;
    tasks_lost += o.tasks_lost;
    steal_grants += o.steal_grants;
    steal_fail += o.steal_fail;
    values_sent += o.values_sent;
    spawn_bytes += o.spawn_bytes;
    payload_forwards += o.payload_forwards;
    return *this;
  }
};

// ---------------------------------------------------------------------------
// chunk_descriptor — the coarsening currency of the pipeline
// ---------------------------------------------------------------------------

namespace locality_detail {

/// Order-preserving 64-bit digest of a GID for range comparisons: integral
/// GIDs map to their value (so [lo, hi] digests really bound the run);
/// other GID types hash, which degrades range tests to exact-match — still
/// sound, just less sharp.
template <typename G>
[[nodiscard]] std::uint64_t gid_digest(G const& g)
{
  if constexpr (std::is_integral_v<G>)
    return static_cast<std::uint64_t>(g);
  else
    return static_cast<std::uint64_t>(std::hash<G>{}(g));
}

} // namespace locality_detail

/// The replicable half of a chunk descriptor: everything the executor
/// needs to spawn, place, rank and report a chunk task — owner, cached-at
/// hint, digest bounds, byte/element counts — and nothing that scales
/// with the chunk's contents.  This is what stealable spawn sites
/// allgather; the GID payload itself stays with its producer and travels
/// point-to-point (see chunk_descriptor).  Trivially copyable, so a
/// vector of these marshals as a flat byte run.
struct chunk_wire {
  location_id owner = 0;                    ///< location owning the data
  location_id cached_at = invalid_location; ///< peer holding it warm (hint)
  std::uint64_t digest_lo = 0;              ///< GID-digest range of the run
  std::uint64_t digest_hi = 0;
  std::uint64_t bytes = 0;                  ///< estimated payload bytes
  std::uint64_t elements = 0;               ///< chunk element count
  bool has_digest = false;                  ///< digest bounds are meaningful
};

/// One coarsened piece of a view's bView: a run-encoded GID payload plus
/// the locality metadata the executor schedules against.  Produced by
/// every view's chunks(grain); consumed end-to-end (placement, victim
/// selection, grain feedback, balancer signals) instead of re-deriving
/// locality per task.  Only the producing location ever holds the full
/// descriptor — peers see its wire() form.
template <typename G>
struct chunk_descriptor {
  gid_sequence<G> gids;                     ///< the chunk's GID run (ordered)
  location_id owner = 0;                    ///< location owning the data
  location_id cached_at = invalid_location; ///< peer holding it warm (hint)
  std::uint64_t bytes = 0;                  ///< estimated payload bytes

  [[nodiscard]] bool empty() const noexcept { return gids.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return gids.size(); }

  /// Digest range of the run (valid only when non-empty).
  [[nodiscard]] std::uint64_t digest_lo() const
  {
    return locality_detail::gid_digest(gids.front());
  }
  [[nodiscard]] std::uint64_t digest_hi() const
  {
    return locality_detail::gid_digest(gids.back());
  }

  /// The metadata-only form peers receive.
  [[nodiscard]] chunk_wire wire() const
  {
    chunk_wire w;
    w.owner = owner;
    w.cached_at = cached_at;
    w.bytes = bytes;
    w.elements = size();
    if (!empty()) {
      w.digest_lo = digest_lo();
      w.digest_hi = digest_hi();
      w.has_digest = true;
    }
    return w;
  }
};

// ---------------------------------------------------------------------------
// Victim preference (executor side)
// ---------------------------------------------------------------------------

/// Steal-probe order for location `me`: peers are ranked by the number of
/// their stealable chunks annotated cached-at-`me` (warmth — stealing those
/// re-uses data this location already touched), then by descending
/// owned-task count, ties toward the lower id.  Locations flagged in
/// `demoted_mask` (bit l set: straggler demoted by repeated steal-probe
/// timeouts, see robust::demoted_mask) rank strictly last regardless of
/// warmth or load — they are probed only after every healthy peer.  Pure
/// and deterministic: the executor computes it from the replicated graph
/// descriptor, and tests drive it directly.
[[nodiscard]] inline std::vector<location_id>
steal_victim_order(location_id me, std::vector<std::size_t> const& owned,
                   std::vector<std::size_t> const& warmth,
                   std::uint64_t demoted_mask)
{
  auto const demoted = [demoted_mask](location_id l) {
    return l < 64 && (demoted_mask & (std::uint64_t{1} << l)) != 0;
  };
  std::vector<location_id> order;
  order.reserve(owned.size());
  for (location_id l = 0; l < owned.size(); ++l)
    if (l != me)
      order.push_back(l);
  std::sort(order.begin(), order.end(), [&](location_id a, location_id b) {
    if (demoted(a) != demoted(b))
      return !demoted(a); // healthy peers strictly first
    if (warmth[a] != warmth[b])
      return warmth[a] > warmth[b];
    if (owned[a] != owned[b])
      return owned[a] > owned[b];
    return a < b;
  });
  return order;
}

[[nodiscard]] inline std::vector<location_id>
steal_victim_order(location_id me, std::vector<std::size_t> const& owned,
                   std::vector<std::size_t> const& warmth)
{
  return steal_victim_order(me, owned, warmth, 0);
}

/// Weight ceiling of one steal grant: the victim grants at most half of
/// the weight by which its stealable backlog exceeds the thief's current
/// ready backlog, so a thief that already holds work cannot end up
/// hoarding more weight than the victim keeps.  An idle thief
/// (backlog 0) gets the classic steal-half — including a lone small
/// task, via the empty-handed floor of one unit — while a thief whose
/// backlog already matches the victim's gets nothing.  Pure —
/// handle_steal_request applies it, tests drive it directly.
[[nodiscard]] constexpr std::uint64_t
steal_grant_cap(std::uint64_t avail, std::uint64_t thief_backlog) noexcept
{
  if (thief_backlog >= avail)
    return 0;
  std::uint64_t const half = (avail - thief_backlog) / 2;
  if (half == 0)
    return thief_backlog == 0 ? 1 : 0;
  return half;
}

// ---------------------------------------------------------------------------
// Per-container feedback state (fed by the executor, read by the views)
// ---------------------------------------------------------------------------

/// Adapts a container's chunking grain from the previous graph's steal/idle
/// counters: heavy stealing means the chunks were too coarse to balance
/// (shrink); a clean steal-free graph relaxes back toward (and slightly
/// past) the default.  The factor multiplies default_grain and is clamped
/// so feedback can never starve the executor of tasks or collapse chunks
/// to single elements.
class grain_tuner {
 public:
  static constexpr double min_factor = 0.125;
  static constexpr double max_factor = 2.0;

  void note(task_graph_stats const& s) noexcept
  {
    if (s.tasks_run == 0 && s.tasks_lost == 0)
      return; // idle replica: no evidence either way
    std::uint64_t const involved = s.tasks_run + s.tasks_lost;
    if ((s.tasks_stolen + s.tasks_lost) * 4 >= involved) {
      // >= 25% of this location's task traffic moved between locations:
      // finer chunks spread the imbalance with less per-grant latency.
      m_factor = std::max(min_factor, m_factor * 0.5);
    } else if (s.tasks_stolen == 0 && s.tasks_lost == 0 &&
               s.steal_fail == 0) {
      // Quiet graph: nothing moved, nobody probed in vain — coarsen back
      // toward the default (and a little beyond, amortizing task setup).
      m_factor = std::min(max_factor, m_factor * 1.25);
    }
  }

  [[nodiscard]] std::size_t apply(std::size_t base) const noexcept
  {
    auto const g = static_cast<std::size_t>(static_cast<double>(base) *
                                            m_factor);
    return g == 0 ? 1 : g;
  }

  [[nodiscard]] double factor() const noexcept { return m_factor; }
  void reset() noexcept { m_factor = 1.0; }

 private:
  double m_factor = 1.0;
};

/// Bounded memory of where chunks of this container actually ran: the
/// executor reports lost chunks (digest range -> executing location) after
/// each graph, and the views stamp the next graph's descriptors with the
/// overlapping entry as the cached-at hint — so work keeps flowing to the
/// location whose caches are already warm with that range.  FIFO-bounded.
/// A new observation owns its exact range: entries it overlaps are
/// trimmed to their non-overlapping remainders instead of being replaced
/// whole, so a stale whole-range hint cannot swallow a sharper partial
/// one (nor the other way round) when grain or chunk boundaries shift
/// between graphs.
class chunk_affinity_table {
 public:
  explicit chunk_affinity_table(std::size_t capacity = 32)
      : m_capacity(capacity)
  {}

  void note(std::uint64_t lo, std::uint64_t hi, location_id where)
  {
    std::deque<entry> kept;
    for (auto const& e : m_entries) {
      if (e.hi < lo || hi < e.lo) {
        kept.push_back(e);
        continue;
      }
      // Partial overlap: keep the old entry's remainder(s) outside the
      // new observation.  (e.lo < lo implies lo > 0; e.hi > hi implies
      // hi < max — the +/-1 cannot wrap.)
      if (e.lo < lo)
        kept.push_back({e.lo, lo - 1, e.where});
      if (e.hi > hi)
        kept.push_back({hi + 1, e.hi, e.where});
    }
    kept.push_back({lo, hi, where});
    while (kept.size() > m_capacity)
      kept.pop_front();
    m_entries = std::move(kept);
  }

  /// Location last observed executing a chunk overlapping [lo, hi], or
  /// invalid_location.
  [[nodiscard]] location_id lookup(std::uint64_t lo, std::uint64_t hi) const
  {
    for (auto const& e : m_entries)
      if (e.lo <= hi && lo <= e.hi)
        return e.where;
    return invalid_location;
  }

  [[nodiscard]] std::size_t size() const noexcept { return m_entries.size(); }
  void clear() noexcept { m_entries.clear(); }

 private:
  struct entry {
    std::uint64_t lo = 0, hi = 0;
    location_id where = invalid_location;
  };
  std::size_t m_capacity;
  std::deque<entry> m_entries;
};

} // namespace stapl

#endif
