#ifndef STAPL_RUNTIME_TYPES_HPP
#define STAPL_RUNTIME_TYPES_HPP

#include <cstdint>
#include <limits>

namespace stapl {

/// Identifier of a location: a component of the parallel machine with a
/// contiguous address space and associated execution capabilities.
using location_id = std::uint32_t;

inline constexpr location_id invalid_location =
    std::numeric_limits<location_id>::max();

/// Globally unique handle of a registered p_object.
/// High 32 bits: creator scope (location id, or `collective_scope` for
/// objects constructed collectively on all locations); low 32 bits: a
/// per-scope registration counter.
using rmi_handle = std::uint64_t;

inline constexpr std::uint32_t collective_scope = 0xFFFFFFFFu;

[[nodiscard]] constexpr rmi_handle make_handle(std::uint32_t scope,
                                               std::uint32_t counter) noexcept
{
  return (static_cast<rmi_handle>(scope) << 32) | counter;
}

[[nodiscard]] constexpr std::uint32_t handle_scope(rmi_handle h) noexcept
{
  return static_cast<std::uint32_t>(h >> 32);
}

/// How remote method invocations are transported between locations.
enum class transport_kind {
  queue,  ///< message passing through per-location FIFO inboxes
  direct  ///< locked direct execution on the target representative
};

} // namespace stapl

#endif
