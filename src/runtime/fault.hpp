#ifndef STAPL_RUNTIME_FAULT_HPP
#define STAPL_RUNTIME_FAULT_HPP

// Deterministic fault injection and runtime-hardening support.
//
// The RTS guarantees (exactly-once handlers, fence termination, collective
// completion) are exercised only on perfectly reliable in-process transports
// today; the pluggable out-of-process backend will expose them to delay,
// duplication, reordering and stalls.  This header provides the adversarial
// seam at the transport boundary plus the observability the hardened paths
// report through:
//
//   * fault::  — a seeded, deterministic injection registry.  Named sites
//     (`STAPL_FAULT(site)`) inside the RMI enqueue/flush/poll paths, the
//     collective cell protocol, directory forwarding, steal grants, payload
//     forwards and migration consult the registry; a `fault::plan` arms a
//     site with an action (message delay through a held-then-delivered
//     queue, duplication, reordering, allocation failure, or a location
//     stall) triggered every Nth hit or with a seeded probability.
//     Decisions are a pure function of (seed, site, location, per-site hit
//     count), so an identical seed + plan replays an identical per-location
//     injection trace regardless of thread interleaving.  Disabled cost is
//     one relaxed atomic load per site, exactly like STAPL_TRACE.
//
//   * robust:: — counters and registries of the hardening machinery: the
//     deadline-aware backoff's retry escalations, receiver-side duplicate
//     suppression, hang-watchdog dumps, and the straggler demotion set fed
//     by steal-probe timeouts (consumed by steal_victim_order and the load
//     balancer, re-promoted when the straggler answers again).
//
// Configuration: programmatic (`fault::add_plan` + `fault::arm(seed)`,
// outside stapl::execute) or via `STAPL_FAULTS=` in the environment, e.g.
//
//   STAPL_FAULTS="rmi.enqueue:dup:n=3;rmi.enqueue:delay:p=0.1,polls=8"
//   STAPL_FAULT_SEED=17
//
// Layering: like instrument.hpp this header depends only on types.hpp and
// instrument.hpp (it is included *by* runtime.hpp); all mutable global
// state lives in fault.cpp.  The watchdog dump reads runtime internals and
// is therefore also defined in fault.cpp.

#include "instrument.hpp"
#include "types.hpp"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace stapl {

namespace fault {

/// Named injection sites.  Keep site_count_ last; names in fault.cpp.
enum class site : std::uint8_t {
  rmi_enqueue,  ///< runtime.hpp enqueue_remote: delay / dup / reorder / alloc
  rmi_flush,    ///< runtime.hpp flush_dest: batch reorder / stall
  rmi_poll,     ///< runtime.hpp poll_once: location stall (straggler nap)
  coll_cell,    ///< collectives.hpp cell publish: stall
  dir_forward,  ///< directory.hpp send_forward: stall
  tg_steal,     ///< task_graph.hpp handle_steal_request: stall / alloc fail
  tg_payload,   ///< task_graph.hpp forward_payload: stall
  migration,    ///< migration.hpp migrate(): stall
  site_count_   ///< sentinel, keep last
};

inline constexpr unsigned num_sites =
    static_cast<unsigned>(site::site_count_);

/// Stable display name ("rmi.enqueue", ...); also the STAPL_FAULTS= key.
[[nodiscard]] char const* name_of(site s) noexcept;

/// Inverse of name_of; site_count_ when unknown.
[[nodiscard]] site site_from_name(std::string const& name) noexcept;

/// Injected actions (bitmask — one plan may combine several).
inline constexpr unsigned act_delay = 1u;      ///< hold, deliver after k polls
inline constexpr unsigned act_duplicate = 2u;  ///< enqueue the request twice
inline constexpr unsigned act_reorder = 4u;    ///< swap with the predecessor
inline constexpr unsigned act_stall = 8u;      ///< nap the location (straggler)
inline constexpr unsigned act_alloc_fail = 16u; ///< fail an allocation path

/// One armed injection rule.  `every_n` (when nonzero) triggers on every
/// Nth hit of the site on each location; otherwise `probability` draws from
/// the seeded per-(site, location, hit) hash.  `only_location` restricts
/// the plan to one location (straggler emulation); `gate` (when nonzero)
/// additionally requires the matching bit in the global gate mask
/// (`set_gate`) — how bench_serve scopes delay storms to labelled windows.
struct plan {
  site where = site::rmi_enqueue;
  unsigned actions = 0;
  unsigned every_n = 0;          ///< 0 = use probability
  double probability = 0.0;
  unsigned delay_polls = 4;      ///< act_delay: polls the message is held
  unsigned stall_us = 200;       ///< act_stall: nap length
  location_id only_location = invalid_location;
  std::uint64_t gate = 0;        ///< 0 = always active while armed
};

/// Decision of one site hit (actions == 0 when nothing triggered).
struct outcome {
  unsigned actions = 0;
  unsigned delay_polls = 0;
  unsigned stall_us = 0;
};

namespace fault_detail {
extern std::atomic<bool> g_armed;
} // namespace fault_detail

/// Whether the fault layer is armed — the only cost paid at every site when
/// it is not (one relaxed atomic load, like trace::enabled()).
[[nodiscard]] inline bool armed() noexcept
{
  return fault_detail::g_armed.load(std::memory_order_relaxed);
}

/// Installs one injection rule.  Call outside (or between) executions.
void add_plan(plan p);

/// Removes every installed rule.
void clear_plans();

/// Arms the layer with `seed`.  Arm before stapl::execute(): the runtime
/// latches sequenced (dedup-protected) delivery at execution start, and
/// duplication injected without it corrupts exactly-once handlers.
void arm(std::uint64_t seed);

/// Disarms the layer (plans and recorded events survive until cleared).
void disarm();

[[nodiscard]] std::uint64_t seed() noexcept;

/// Suspends / resumes injection while staying armed (sequenced delivery
/// stays on).  Cheap relaxed-atomic gate, SPMD-safe to toggle after a
/// fence — every location stores the same value.
void pause() noexcept;
void resume() noexcept;

/// Sets the global gate mask consulted by gated plans (see plan::gate).
void set_gate(std::uint64_t mask) noexcept;

/// Evaluates one site hit on the calling location: advances the per-site
/// hit counter, applies every matching plan, records the injection event
/// and counters, performs an act_stall nap itself, and returns the outcome
/// for actions that need call-site cooperation (delay/dup/reorder/alloc).
/// Called through STAPL_FAULT only when armed().
[[nodiscard]] outcome on_site(site s);

/// Binds the calling thread to location `id` for injection decisions and
/// event logging, resetting the per-site hit counters (so every execution
/// replays from hit 0).  Called by the SPMD driver; no-op when disarmed.
void attach(location_id id) noexcept;
void detach() noexcept;

/// One recorded injection (the deterministic-replay unit).  The trace to
/// compare across runs is the *per-location* event subsequence: cross-
/// location interleaving in `all_events` order is scheduling-dependent,
/// each location's own sequence is not.
struct event {
  site where = site::site_count_;
  unsigned actions = 0;
  std::uint64_t hit = 0;  ///< per-(site, location) hit count at injection
  location_id loc = invalid_location;

  [[nodiscard]] bool operator==(event const& o) const noexcept
  {
    return where == o.where && actions == o.actions && hit == o.hit &&
           loc == o.loc;
  }
};

/// Injection events recorded on `loc`, in injection order.
[[nodiscard]] std::vector<event> events(location_id loc);

/// All recorded injection events (unspecified cross-location order).
[[nodiscard]] std::vector<event> all_events();

/// Drops all recorded injection events.
void clear_events();

/// Per-thread injected-event counters, folded into metrics as "fault.*"
/// by the runtime contributor.
struct counters {
  std::uint64_t injected = 0;     ///< site hits with at least one action
  std::uint64_t delays = 0;
  std::uint64_t dups = 0;
  std::uint64_t reorders = 0;
  std::uint64_t stalls = 0;
  std::uint64_t alloc_fails = 0;
};

[[nodiscard]] inline counters& tl_counters() noexcept
{
  thread_local counters c;
  return c;
}

/// Parses STAPL_FAULTS / STAPL_FAULT_SEED / STAPL_WATCHDOG_MS once per
/// process (idempotent); arms the layer when STAPL_FAULTS is set.  Called
/// at the start of every stapl::execute().
void init_from_env();

// ---------------------------------------------------------------------------
// Hang watchdog
// ---------------------------------------------------------------------------

/// Deadline (milliseconds of accumulated blocked time in one wait) past
/// which deadline_backoff dumps diagnostics.  0 disables.  Default 30000,
/// overridable with STAPL_WATCHDOG_MS.
[[nodiscard]] std::uint64_t watchdog_ms() noexcept;
void set_watchdog_ms(std::uint64_t ms) noexcept;

/// Dumps actionable diagnostics for a wait blocked past the deadline in
/// site `what`: per-location last trace events, inbox depths, parked
/// (deferred) request counts, pending collective cell seq/ack states and
/// the global sent/executed balance.  Written to stderr and retained for
/// last_watchdog_report().  Defined in fault.cpp (reads runtime state).
void watchdog_fire(char const* what);

/// The most recent watchdog dump (empty when none fired).
[[nodiscard]] std::string last_watchdog_report();

} // namespace fault

// ---------------------------------------------------------------------------
// robust — hardening counters, knobs and the straggler demotion registry
// ---------------------------------------------------------------------------

namespace robust {

/// Per-thread hardening counters, folded into metrics as "robust.*".
struct counters {
  std::uint64_t retries = 0;          ///< deadline-backoff escalations
  std::uint64_t dups_suppressed = 0;  ///< duplicate deliveries suppressed
  std::uint64_t watchdog_dumps = 0;
  std::uint64_t probe_timeouts = 0;   ///< steal probes given up on
  std::uint64_t demotions = 0;        ///< straggler demotions
  std::uint64_t repromotions = 0;     ///< demoted locations that recovered
};

[[nodiscard]] inline counters& tl() noexcept
{
  thread_local counters c;
  return c;
}

/// Straggler demotion registry: a process-global bitmask over the first 64
/// locations (more than this RTS ever runs in one process).  Demoted
/// locations rank last in steal_victim_order and are skipped as rebalance
/// receivers for the epoch; a demoted location that answers a probe again
/// is re-promoted.  demote/promote return whether the bit changed, so
/// callers count each transition once.
bool demote(location_id l) noexcept;
bool promote(location_id l) noexcept;
[[nodiscard]] bool is_demoted(location_id l) noexcept;
[[nodiscard]] std::uint64_t demoted_mask() noexcept;
void reset_demotions() noexcept;

/// Steal-probe timeout: a probe unanswered for this long counts a strike
/// against the victim; `demote_after` strikes demote it.  0 disables the
/// detector.  Generous default (100ms) so scheduler hiccups on
/// oversubscribed hosts do not demote healthy peers.
[[nodiscard]] std::uint64_t probe_timeout_us() noexcept;
void set_probe_timeout_us(std::uint64_t us) noexcept;

[[nodiscard]] unsigned demote_after() noexcept;
void set_demote_after(unsigned strikes) noexcept;

} // namespace robust

} // namespace stapl

/// Site hook: one relaxed atomic load when the fault layer is disarmed; a
/// registry consultation (and possibly an injected action) when armed.
#define STAPL_FAULT(s)                                                       \
  (::stapl::fault::armed() ? ::stapl::fault::on_site(s)                      \
                           : ::stapl::fault::outcome{})

/// Convenience for stall-only sites (the outcome needs no call-site
/// cooperation: on_site performs the nap itself).
#define STAPL_FAULT_POINT(s)                                                 \
  do {                                                                       \
    if (::stapl::fault::armed())                                             \
      (void)::stapl::fault::on_site(s);                                      \
  } while (0)

#endif
