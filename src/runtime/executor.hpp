#ifndef STAPL_RUNTIME_EXECUTOR_HPP
#define STAPL_RUNTIME_EXECUTOR_HPP

// Executor and pRange (dissertation Ch. III): a pAlgorithm is represented
// as a graph of tasks (work + data) with dependence edges; the executor —
// itself a distributed shared object — runs tasks whose dependencies are
// satisfied, updates dependencies as tasks complete, and injects the
// synchronization points of Ch. VII.H when the computation finishes.
//
// The task graph descriptor is replicated (built identically on every
// location, SPMD style); each task has one owner location where its work
// function runs.  Completion notifications travel as asynchronous RMIs.

#include <cassert>
#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "runtime.hpp"

namespace stapl {

/// A distributed task dependence graph.  Construction is collective: every
/// location must add the same tasks and edges in the same order.
class p_range : public p_object {
 public:
  using task_id = std::size_t;

  /// Adds a task owned by `owner`; `work` runs on that location only.
  task_id add_task(location_id owner, std::function<void()> work)
  {
    task_id const id = m_tasks.size();
    m_tasks.push_back(task{std::move(work), owner, {}, 0, false});
    if (owner == this_location())
      ++m_local_remaining;
    return id;
  }

  /// Declares that `succ` cannot start before `pred` completes.
  void add_dependence(task_id pred, task_id succ)
  {
    assert(pred < m_tasks.size() && succ < m_tasks.size());
    m_tasks[pred].succs.push_back(succ);
    ++m_tasks[succ].preds;
  }

  [[nodiscard]] std::size_t num_tasks() const noexcept
  {
    return m_tasks.size();
  }
  [[nodiscard]] bool task_done(task_id t) const { return m_tasks[t].done; }

  /// Runs the graph to completion.  Collective; ends with a fence.
  void execute()
  {
    for (task_id t = 0; t < m_tasks.size(); ++t)
      if (m_tasks[t].owner == this_location() && m_tasks[t].preds == 0)
        m_ready.push_back(t);

    runtime_detail::wait_backoff bo;
    while (m_local_remaining != 0) {
      if (m_ready.empty()) {
        // Wait for completion notifications from predecessor owners.
        if (runtime_detail::poll_once())
          bo.reset();
        else
          bo.pause();
        continue;
      }
      task_id const t = m_ready.front();
      m_ready.pop_front();
      run_task(t);
      bo.reset();
    }
    rmi_fence();
  }

  /// Framework-internal: records the completion of a predecessor.
  void notify(task_id succ)
  {
    assert(m_tasks[succ].owner == this_location());
    if (--m_tasks[succ].preds == 0)
      m_ready.push_back(succ);
  }

 private:
  struct task {
    std::function<void()> work;
    location_id owner = 0;
    std::vector<task_id> succs;
    int preds = 0;
    bool done = false;
  };

  void run_task(task_id t)
  {
    auto& tk = m_tasks[t];
    tk.work();
    tk.done = true;
    --m_local_remaining;
    for (task_id s : tk.succs) {
      location_id const owner = m_tasks[s].owner;
      if (owner == this_location())
        notify(s);
      else
        async_rmi<p_range>(owner, get_handle(), &p_range::notify, s);
    }
  }

  std::vector<task> m_tasks;
  std::deque<task_id> m_ready;
  std::size_t m_local_remaining = 0;
};

/// map_func (Ch. VII.A, Fig. 19): spawns one task per location applying the
/// work function to every element of the location's bView, executes the
/// resulting pRange, fences, and invokes post_execute on the view.
template <typename WF, typename View>
void map_func(WF wf, View v)
{
  p_range pr;
  for (location_id l = 0; l < num_locations(); ++l)
    pr.add_task(l, [&v, wf]() mutable {
      for (auto g : v.local_gids()) {
        auto f = [&](auto& x) { wf(x); };
        if constexpr (requires { v.try_local_ref(g); }) {
          if (auto* p = v.try_local_ref(g)) {
            f(*p);
            continue;
          }
        }
        auto x = v.read(g);
        f(x);
        if constexpr (requires { v.write(g, x); })
          v.write(g, x);
      }
    });
  pr.execute();
  v.post_execute();
}

} // namespace stapl

#endif
