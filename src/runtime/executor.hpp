#ifndef STAPL_RUNTIME_EXECUTOR_HPP
#define STAPL_RUNTIME_EXECUTOR_HPP

// Compatibility surface of the original executor (dissertation Ch. III).
//
// The real executor now lives in task_graph.hpp: coarsened chunk tasks,
// value-carrying dependence edges and cross-location work stealing.  This
// header keeps the historical entry points alive:
//
//   * p_range — the original "one task, one owner, void work" descriptor,
//     now a thin shim over task_graph<char>.  Tasks added through it are
//     pinned to their owner (never stolen), preserving the documented
//     "work runs on that location only" contract.
//   * map_func — re-exported from task_graph.hpp, where it spawns many
//     chunk tasks per location instead of one.

#include <cstddef>
#include <functional>
#include <utility>

#include "task_graph.hpp"

namespace stapl {

/// A distributed task dependence graph with void tasks (legacy interface).
/// Construction is collective: every location must add the same tasks and
/// edges in the same order.
class p_range : public task_graph<char> {
 public:
  using task_id = task_graph<char>::task_id;

  p_range()
  {
    // All p_range tasks are owner-pinned; never probe peers for work.
    set_stealing(false);
  }

  /// Adds a task owned by `owner`; `work` runs on that location only.
  task_id add_task(location_id owner, std::function<void()> work)
  {
    return task_graph<char>::add_task(
        owner,
        [work = std::move(work)](std::vector<char> const&, char const&) {
          work();
          return char{};
        });
  }
};

} // namespace stapl

#endif
