#include "collectives.hpp"

#include <atomic>

namespace stapl {
namespace coll {

namespace {

std::atomic<mode> g_mode{mode::auto_select};
std::atomic<unsigned> g_flat_threshold{4};

} // namespace

mode get_mode() noexcept { return g_mode.load(std::memory_order_relaxed); }

void set_mode(mode m) noexcept
{
  g_mode.store(m, std::memory_order_relaxed);
}

unsigned flat_threshold() noexcept
{
  return g_flat_threshold.load(std::memory_order_relaxed);
}

void set_flat_threshold(unsigned p) noexcept
{
  g_flat_threshold.store(p, std::memory_order_relaxed);
}

} // namespace coll
} // namespace stapl
